module Clock = Qca_util.Clock
module Obs = Qca_obs.Metrics

let m_cycles = Obs.counter "par.lockcheck.cycles"
let m_long_holds = Obs.counter "par.lockcheck.long_holds"

type t = { mu : Mutex.t; id : int; lname : string }

let name t = t.lname

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "QCA_LOCKCHECK" with
    | Some ("1" | "true" | "on") -> true
    | _ -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let long_hold_ms =
  Atomic.make
    (match Option.bind (Sys.getenv_opt "QCA_LOCKCHECK_MS") float_of_string_opt with
    | Some ms when ms >= 0.0 -> ms
    | _ -> 250.0)

let set_long_hold_ms ms = Atomic.set long_hold_ms ms

type kind = Cycle | Long_hold

type report = { r_kind : kind; r_message : string }

(* {1 Checker state}

   One global order graph shared by every domain, guarded by a *raw*
   mutex: the checker cannot check itself. The graph only ever grows
   (first observation of each edge is kept), so the memory cost is
   bounded by the number of distinct (held, wanted) lock pairs. *)

let max_retained_reports = 100

let state_m = Mutex.create ()

let next_id = ref 0
  [@@qca.domain_safe "guarded by state_m"]

(* edge (a, b): some domain acquired b while holding a *)
let edges : (int * int, unit) Hashtbl.t = Hashtbl.create 64
  [@@qca.domain_safe "guarded by state_m"]

let succs : (int, int list) Hashtbl.t = Hashtbl.create 64
  [@@qca.domain_safe "guarded by state_m"]

let names : (int, string) Hashtbl.t = Hashtbl.create 64
  [@@qca.domain_safe "guarded by state_m"]

let reports_rev : report list ref = ref []
  [@@qca.domain_safe "guarded by state_m"]

let n_reports = ref 0
  [@@qca.domain_safe "guarded by state_m"]

let n_cycles = ref 0
  [@@qca.domain_safe "guarded by state_m"]

let n_long_holds = ref 0
  [@@qca.domain_safe "guarded by state_m"]

(* The held stack is per-domain: (lock, acquisition time), most recent
   first. DLS keeps it allocation-free on the lock path. *)
let held_key : (t * float) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let held () = Domain.DLS.get held_key

let locked_state f =
  Mutex.lock state_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock state_m) f

let record_report kind msg counter_cell obs_counter =
  (* caller holds state_m *)
  incr n_reports;
  incr counter_cell;
  Obs.incr obs_counter;
  if !n_reports <= max_retained_reports then
    reports_rev := { r_kind = kind; r_message = msg } :: !reports_rev

let reports () = locked_state (fun () -> List.rev !reports_rev)
let cycles () = locked_state (fun () -> !n_cycles)
let long_holds () = locked_state (fun () -> !n_long_holds)

let reset () =
  locked_state (fun () ->
      Hashtbl.reset edges;
      Hashtbl.reset succs;
      reports_rev := [];
      n_reports := 0;
      n_cycles := 0;
      n_long_holds := 0);
  held () := []

let create ?name () =
  let id = locked_state (fun () -> let id = !next_id in incr next_id; id) in
  let lname =
    match name with Some n -> n | None -> Printf.sprintf "mutex-%d" id
  in
  locked_state (fun () -> Hashtbl.replace names id lname);
  { mu = Mutex.create (); id; lname }

let name_of id =
  match Hashtbl.find_opt names id with
  | Some n -> Printf.sprintf "%s#%d" n id
  | None -> Printf.sprintf "#%d" id

(* Path from [src] to [dst] in the order graph, as lock names (caller
   holds state_m). BFS keeps the reported witness minimal. *)
let find_path src dst =
  let prev = Hashtbl.create 16 in
  let q = Queue.create () in
  Queue.push src q;
  Hashtbl.replace prev src src;
  let rec bfs () =
    match Queue.take_opt q with
    | None -> None
    | Some u ->
      if u = dst then begin
        let rec build acc v =
          if v = src then v :: acc else build (v :: acc) (Hashtbl.find prev v)
        in
        Some (build [] dst)
      end
      else begin
        List.iter
          (fun v ->
            if not (Hashtbl.mem prev v) then begin
              Hashtbl.replace prev v u;
              Queue.push v q
            end)
          (Option.value (Hashtbl.find_opt succs u) ~default:[]);
        bfs ()
      end
  in
  bfs ()

(* Before blocking on [want] while [h] is held: merge the edge
   h -> want and flag a cycle iff want already reaches h. *)
let note_edge h want =
  locked_state (fun () ->
      let e = (h.id, want.id) in
      if not (Hashtbl.mem edges e) then begin
        (match find_path want.id h.id with
        | Some path ->
          let chain =
            String.concat " -> " (List.map name_of (path @ [ want.id ]))
          in
          record_report Cycle
            (Printf.sprintf
               "lock-order cycle: acquiring %s while holding %s inverts the \
                established order %s"
               (name_of want.id) (name_of h.id) chain)
            n_cycles m_cycles
        | None -> ());
        Hashtbl.replace edges e ();
        Hashtbl.replace succs h.id
          (want.id :: Option.value (Hashtbl.find_opt succs h.id) ~default:[])
      end)

let push_held t =
  let hs = held () in
  hs := (t, Clock.now ()) :: !hs

(* Remove [t]'s innermost hold and report if it outlived the
   threshold. Robust to a stack perturbed by a mid-section
   [set_enabled] flip: a missing entry is ignored. *)
let pop_held t =
  let hs = held () in
  let rec remove = function
    | [] -> []
    | (h, since) :: rest when h.id = t.id ->
      let ms = Clock.ms_between since (Clock.now ()) in
      if ms > Atomic.get long_hold_ms then
        locked_state (fun () ->
            record_report Long_hold
              (Printf.sprintf "%s held for %.1f ms (threshold %.1f ms)"
                 (name_of t.id) ms
                 (Atomic.get long_hold_ms))
              n_long_holds m_long_holds);
      rest
    | kept :: rest -> kept :: remove rest
  in
  hs := remove !hs

let lock t =
  if not (Atomic.get enabled_flag) then Mutex.lock t.mu
  else begin
    List.iter (fun (h, _) -> if h.id <> t.id then note_edge h t) !(held ());
    Mutex.lock t.mu;
    push_held t
  end

let unlock t =
  if not (Atomic.get enabled_flag) then Mutex.unlock t.mu
  else begin
    pop_held t;
    Mutex.unlock t.mu
  end

let wait cv t =
  if not (Atomic.get enabled_flag) then Condition.wait cv t.mu
  else begin
    (* a condition wait releases the mutex: close the hold window so
       the parked time is not billed as a long hold, and so the order
       graph does not see locks acquired by *other* domains during the
       wait as nested under [t] *)
    pop_held t;
    Condition.wait cv t.mu;
    push_held t
  end
