type site =
  | Sat_step
  | Theory_check
  | Omt_round
  | Warm_start
  | Greedy_step
  | Serve_accept
  | Serve_request

type action = Exhaust | Spurious_conflict | Cancel

let site_index = function
  | Sat_step -> 0
  | Theory_check -> 1
  | Omt_round -> 2
  | Warm_start -> 3
  | Greedy_step -> 4
  | Serve_accept -> 5
  | Serve_request -> 6

let num_sites = 7

type mode =
  | Off
  | Plan of (int * int * action) list  (* (site index, count, action) *)
  | Random of Rng.t * float * action

type t = { mode : mode; counts : int array }

let none = { mode = Off; counts = Array.make num_sites 0 }
  [@@qca.domain_safe "counts is never written while mode = Off"]

let inject plan =
  {
    mode = Plan (List.map (fun (s, n, a) -> (site_index s, n, a)) plan);
    counts = Array.make num_sites 0;
  }

let random ~seed ~p action =
  { mode = Random (Rng.create seed, p, action); counts = Array.make num_sites 0 }

let is_none t = t.mode = Off

let check t site =
  match t.mode with
  | Off -> None
  | Plan plan ->
    let i = site_index site in
    let n = t.counts.(i) + 1 in
    t.counts.(i) <- n;
    List.find_map
      (fun (si, sn, a) -> if si = i && sn = n then Some a else None)
      plan
  | Random (rng, p, action) ->
    let i = site_index site in
    t.counts.(i) <- t.counts.(i) + 1;
    if Rng.float rng 1.0 < p then Some action else None

let consultations t site = t.counts.(site_index site)

let site_name = function
  | Sat_step -> "sat-step"
  | Theory_check -> "theory-check"
  | Omt_round -> "omt-round"
  | Warm_start -> "warm-start"
  | Greedy_step -> "greedy-step"
  | Serve_accept -> "serve-accept"
  | Serve_request -> "serve-request"

let action_name = function
  | Exhaust -> "exhaust"
  | Spurious_conflict -> "spurious-conflict"
  | Cancel -> "cancel"

let site_of_name = function
  | "sat-step" -> Ok Sat_step
  | "theory-check" -> Ok Theory_check
  | "omt-round" -> Ok Omt_round
  | "warm-start" -> Ok Warm_start
  | "greedy-step" -> Ok Greedy_step
  | "serve-accept" -> Ok Serve_accept
  | "serve-request" -> Ok Serve_request
  | other -> Error (Printf.sprintf "unknown fault site %S" other)

let action_of_name = function
  | "exhaust" -> Ok Exhaust
  | "spurious-conflict" -> Ok Spurious_conflict
  | "cancel" -> Ok Cancel
  | other -> Error (Printf.sprintf "unknown fault action %S" other)

let of_spec spec =
  let ( let* ) = Result.bind in
  match String.split_on_char ':' (String.trim spec) with
  | "random" :: rest -> (
    match rest with
    | [ seed; p; action ] -> (
      match (int_of_string_opt seed, float_of_string_opt p) with
      | Some seed, Some p when p >= 0.0 && p <= 1.0 ->
        let* action = action_of_name action in
        Ok (random ~seed ~p action)
      | _ -> Error "random plan is random:SEED:P:ACTION with P in [0,1]")
    | _ -> Error "random plan is random:SEED:P:ACTION")
  | _ ->
    let* entries =
      List.fold_left
        (fun acc triple ->
          let* acc = acc in
          match String.split_on_char ':' (String.trim triple) with
          | [ site; n; action ] -> (
            let* site = site_of_name site in
            let* action = action_of_name action in
            match int_of_string_opt n with
            | Some n when n >= 1 -> Ok ((site, n, action) :: acc)
            | _ -> Error (Printf.sprintf "fault count %S must be >= 1" n))
          | _ ->
            Error
              (Printf.sprintf "malformed fault entry %S (want site:n:action)"
                 triple))
        (Ok [])
        (String.split_on_char ',' spec)
    in
    Ok (inject (List.rev entries))
