type site = Sat_step | Theory_check | Omt_round | Warm_start | Greedy_step

type action = Exhaust | Spurious_conflict | Cancel

let site_index = function
  | Sat_step -> 0
  | Theory_check -> 1
  | Omt_round -> 2
  | Warm_start -> 3
  | Greedy_step -> 4

let num_sites = 5

type mode =
  | Off
  | Plan of (int * int * action) list  (* (site index, count, action) *)
  | Random of Rng.t * float * action

type t = { mode : mode; counts : int array }

let none = { mode = Off; counts = Array.make num_sites 0 }

let inject plan =
  {
    mode = Plan (List.map (fun (s, n, a) -> (site_index s, n, a)) plan);
    counts = Array.make num_sites 0;
  }

let random ~seed ~p action =
  { mode = Random (Rng.create seed, p, action); counts = Array.make num_sites 0 }

let is_none t = t.mode = Off

let check t site =
  match t.mode with
  | Off -> None
  | Plan plan ->
    let i = site_index site in
    let n = t.counts.(i) + 1 in
    t.counts.(i) <- n;
    List.find_map
      (fun (si, sn, a) -> if si = i && sn = n then Some a else None)
      plan
  | Random (rng, p, action) ->
    let i = site_index site in
    t.counts.(i) <- t.counts.(i) + 1;
    if Rng.float rng 1.0 < p then Some action else None

let consultations t site = t.counts.(site_index site)
