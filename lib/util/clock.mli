(** Wall-clock time for deadlines.

    [now] is based on [Unix.gettimeofday] but is guaranteed
    non-decreasing within a process (a backwards step of the system
    clock is clamped), which is the property budget deadlines need. *)

val now : unit -> float
(** Seconds since the epoch, monotone non-decreasing. *)

val ms_between : float -> float -> float
(** [ms_between t0 t1] is [(t1 - t0)] in milliseconds, clamped at 0. *)
