(** Deterministic fault injection for the solving stack.

    The resource-governance layer (solver budget checks, the DPLL(T)
    refinement loop, the OMT driver, and the adaptation pipeline's
    degradation ladder) consults a fault plan at well-known sites. A
    plan fires a chosen action at the [n]th consultation of a site —
    fully deterministic — or, in random mode, with a seeded Bernoulli
    coin. Production code passes {!none}, which is free.

    Injected actions simulate the real failure, so every degradation
    edge (budget exhaustion at each tier, spurious theory conflicts,
    cancellation mid-search) can be exercised by tests instead of
    relying on hitting real resource limits. *)

type site =
  | Sat_step  (** once per CDCL conflict/decision iteration *)
  | Theory_check  (** before each difference-logic consistency check *)
  | Omt_round  (** before each OMT improvement round *)
  | Warm_start  (** before each greedy warm-start sweep in [Model.optimize] *)
  | Greedy_step  (** before each refinement step of the greedy fallback *)
  | Serve_accept
      (** in the daemon, before each accepted connection is admitted —
          [Spurious_conflict] simulates a transient accept/socket error,
          [Cancel] a client that disconnects before its frame arrives *)
  | Serve_request
      (** in the daemon, before each admitted request is solved —
          [Exhaust] simulates transient budget exhaustion (exercising
          the retry-with-backoff path), [Cancel] a client gone mid-solve,
          [Spurious_conflict] a handler crash (isolation path) *)

type action =
  | Exhaust  (** report budget exhaustion at this site *)
  | Spurious_conflict
      (** at {!Theory_check}: a transient theory conflict — the loop
          must retry (consuming fuel) without learning a clause *)
  | Cancel  (** behave as if the request was cancelled *)

type t

val none : t
(** The empty plan: {!check} always answers [None]. *)

val inject : (site * int * action) list -> t
(** [inject plan] fires [action] at the [n]th consultation (1-based) of
    [site], for each [(site, n, action)] entry. Several entries may
    target the same site at different counts. *)

val random : seed:int -> p:float -> action -> t
(** A seeded Bernoulli plan: every consultation of every site fires
    [action] with probability [p], reproducibly for a given [seed]. *)

val of_spec : string -> (t, string) result
(** Parse a textual plan for CLI flags. Either a comma-separated list
    of [site:n:action] triples — e.g.
    ["serve-request:3:exhaust,serve-accept:1:cancel"] — which builds
    {!inject}, or ["random:SEED:P:action"], which builds {!random}.
    Site names are the constructor names in kebab-case ([sat-step],
    [theory-check], [omt-round], [warm-start], [greedy-step],
    [serve-accept], [serve-request]); actions are [exhaust],
    [spurious-conflict] and [cancel]. *)

val site_name : site -> string
(** The kebab-case name {!of_spec} accepts. *)

val action_name : action -> string

val check : t -> site -> action option
(** Consult the plan (advances the site's consultation counter). *)

val consultations : t -> site -> int
(** How many times [site] has been consulted so far. *)

val is_none : t -> bool
(** [true] only for {!none} (checking it never fires and costs nothing). *)
