let last = ref 0.0

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let ms_between t0 t1 = Float.max 0.0 ((t1 -. t0) *. 1000.0)
