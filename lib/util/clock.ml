(* Monotone watermark over the wall clock, shared by every domain: a
   CAS loop keeps [now] non-decreasing process-wide even when several
   domains read the clock concurrently (gettimeofday itself may step
   backwards under NTP). *)
let last = Atomic.make 0.0

let now () =
  let t = Unix.gettimeofday () in
  let rec bump () =
    let l = Atomic.get last in
    if t > l then if Atomic.compare_and_set last l t then t else bump ()
    else l
  in
  bump ()

let ms_between t0 t1 = Float.max 0.0 ((t1 -. t0) *. 1000.0)
