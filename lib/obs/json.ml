(* A minimal JSON reader for the observability tooling: enough to load
   the forensic dumps and Chrome traces this library itself writes.
   Recursive descent over a string, no dependencies; errors are a
   Result, never an exception. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let bad msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos >= n then bad "unexpected end" else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    if
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    skip_ws ();
    if peek () <> c then bad (Printf.sprintf "expected %C" c);
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      let c = peek () in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        let e = peek () in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > n then bad "truncated \\u escape";
          (match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
          | None -> bad "malformed \\u escape"
          | Some code ->
            pos := !pos + 4;
            (* non-Latin-1 code points degrade to '?': the reader only
               needs ASCII field names and numbers *)
            Buffer.add_char buf
              (if code land 0xff = code then Char.chr code else '?'))
        | _ -> bad "unknown escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let literal word v =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else bad "unknown literal"
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> bad "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else
        let rec members acc =
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> bad "expected ',' or '}'"
        in
        members []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> bad "expected ',' or ']'"
        in
        elements []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then bad "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* {1 Accessors} *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let arr = function Arr l -> Some l | _ -> None

let str_member k v = Option.bind (member k v) str
let num_member k v = Option.bind (member k v) num
let arr_member k v = Option.bind (member k v) arr
