(* Prometheus text exposition (version 0.0.4) of the Metrics registry.

   Metric names are sanitized ([a-zA-Z0-9_:] survive, everything else
   becomes '_') and prefixed "qca_". Histograms render as the
   conventional cumulative [_bucket{le="..."}] series over the
   registry's power-of-two bounds plus [_sum]/[_count], and the
   interpolated p50/p90/p99 estimates as a companion
   [<name>_q{quantile="..."}] gauge family (a histogram and a summary
   cannot share one name, and the server-side estimates are cheap to
   expose). *)

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "qca_" ^ Bytes.to_string b

let num value =
  if Float.is_integer value && Float.abs value < 1e15 then
    Printf.sprintf "%.0f" value
  else Printf.sprintf "%.9g" value

let add_histogram buf name (h : Metrics.hist_summary) bucket_counts =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
  let cum = ref 0 in
  Array.iteri
    (fun i n ->
      cum := !cum + n;
      let _, hi = Metrics.bucket_bounds i in
      if hi <> infinity then
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (num hi) !cum))
    bucket_counts;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.Metrics.h_count);
  Buffer.add_string buf
    (Printf.sprintf "%s_sum %s\n" name (num h.Metrics.h_sum));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" name h.Metrics.h_count);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s_q gauge\n" name);
  List.iter
    (fun (q, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s_q{quantile=\"%s\"} %s\n" name q (num v)))
    [
      ("0.5", h.Metrics.h_p50);
      ("0.9", h.Metrics.h_p90);
      ("0.99", h.Metrics.h_p99);
    ]

let exposition () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      match e with
      | Metrics.Counter_v (n, v) ->
        let n' = sanitize n in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n');
        Buffer.add_string buf (Printf.sprintf "%s %d\n" n' v)
      | Metrics.Gauge_v (n, v) ->
        let n' = sanitize n in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n');
        Buffer.add_string buf (Printf.sprintf "%s %s\n" n' (num v))
      | Metrics.Histogram_v (n, h) ->
        let counts = Metrics.bucket_counts (Metrics.histogram n) in
        add_histogram buf (sanitize n) h counts)
    (Metrics.export ());
  Buffer.contents buf
