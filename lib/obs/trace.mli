(** Span-based tracer with Chrome [trace_event] export.

    Spans are timed with the monotone {!Qca_util.Clock}; timestamps are
    microseconds relative to the tracer's start. When disabled (the
    default) every entry point is a single predictable branch and the
    traced code runs bit-identically.

    The recorded trace can be rendered as a human-readable tree
    ({!pp_summary}) or exported as Chrome [trace_event] JSON
    ({!to_chrome_json} / {!write_chrome}) loadable in
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}. The
    export embeds a {!Metrics} snapshot under ["otherData"].

    The [QCA_TRACE] environment variable arms the tracer for a whole
    process: [QCA_TRACE=1] prints the tree summary to stderr at exit,
    any other non-empty value (except [0]) is a file path that receives
    the Chrome JSON at exit. Both forms also enable the metrics
    registry.

    Recording is domain-safe: the event log is mutex-guarded and each
    domain keeps its own open-span stack (spans nest within a domain
    and never migrate). Events carry the recording domain's id, which
    becomes the [tid] in the Chrome export (with a [thread_name]
    metadata row per domain). {!set_enabled} and {!reset} are
    management operations for the coordinating domain. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val env_file : string option
(** The file named by [QCA_TRACE], if it names one. *)

(** {1 Recording spans} *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span. The span is closed (and
    recorded) even when [f] raises. When the tracer is disabled this is
    exactly [f ()]. *)

val begin_span : ?args:(string * string) list -> string -> unit

val end_span : ?args:(string * string) list -> string -> unit
(** Closes the innermost open span. Raises [Invalid_argument] when no
    span is open or the innermost open span has a different name (an
    orphan close — the mismatch is reported rather than silently
    mis-nesting the trace). [args] are appended to the begin-side
    args. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration marker event (Chrome phase ["i"]). *)

val counter : string -> float -> unit
(** A counter sample (Chrome phase ["C"]) — e.g. the OMT incumbent
    objective per round; renders as a stepped series in Perfetto. *)

(** {1 Reading} *)

type span_record = {
  s_name : string;
  s_ts_us : int;  (** start, microseconds since tracer start *)
  s_dur_us : int;
  s_depth : int;  (** nesting depth at begin time, within [s_tid] *)
  s_tid : int;  (** recording domain's id (0 = main) *)
  s_trace : int;
      (** {!Tracectx.current_word} at close time (0 = no request
          context) — lets a forensic dump slice one request's span
          tree out of a shared trace *)
  s_args : (string * string) list;
}

val spans : unit -> span_record list
(** Completed spans in start order. *)

val open_depth : unit -> int
(** Number of currently open spans. *)

val events_recorded : unit -> int
(** Total recorded events (spans + instants + counter samples). *)

(** {1 Export} *)

val pp_summary : Format.formatter -> unit -> unit
(** Indented tree of completed spans with durations. *)

val to_chrome_json : unit -> string
(** The whole trace as a Chrome [trace_event] JSON object:
    [{"traceEvents": [...], "displayTimeUnit": "ms",
    "otherData": {"metrics": {...}}}]. *)

val write_chrome : string -> unit
(** Writes {!to_chrome_json} to a file. *)

val reset : unit -> unit
(** Drops all recorded events and open spans; re-zeroes the clock. *)
