module Clock = Qca_util.Clock

type kind = Counter | Gauge | Histogram

let num_buckets = 32

(* Every cell is an [Atomic.t] so concurrent domains (portfolio seats,
   pool workers) never lose updates: int cells use fetch-and-add, float
   cells a CAS retry loop. The per-update cost with the registry off is
   still a single boolean load. *)
type metric = {
  m_name : string;
  m_kind : kind;
  c_value : int Atomic.t;  (* counters *)
  g_value : float Atomic.t;  (* gauges *)
  buckets : int Atomic.t array;  (* histograms only; [||] otherwise *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_max : float Atomic.t;
}

type id = int

(* Registry storage: a growable array indexed by id plus the interning
   table, both guarded by [intern_m]. Growth blits the existing metric
   records (pointers) into the fresh array, so updaters racing through
   a stale [!metrics] still hit the same atomic cells. *)
let metrics : metric array ref = ref [||]
  [@@qca.domain_safe "guarded by intern_m"]

let n_metrics = ref 0
  [@@qca.domain_safe "guarded by intern_m"]

let by_name : (string, id) Hashtbl.t = Hashtbl.create 64
  [@@qca.domain_safe "guarded by intern_m"]
let intern_m = Mutex.create ()

let live = Atomic.make false
let enabled () = Atomic.get live

let started = Atomic.make 0.0

let set_enabled b =
  Atomic.set live b;
  if b then Atomic.set started (Clock.now ())

let elapsed_s () =
  if not (Atomic.get live) then 0.0
  else Clock.ms_between (Atomic.get started) (Clock.now ()) /. 1000.0

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let fresh_metric name kind =
  {
    m_name = name;
    m_kind = kind;
    c_value = Atomic.make 0;
    g_value = Atomic.make 0.0;
    buckets =
      (if kind = Histogram then Array.init num_buckets (fun _ -> Atomic.make 0)
       else [||]);
    h_count = Atomic.make 0;
    h_sum = Atomic.make 0.0;
    h_max = Atomic.make 0.0;
  }

let intern name kind =
  Mutex.lock intern_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock intern_m)
    (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some id ->
        let m = !metrics.(id) in
        if m.m_kind <> kind then
          invalid_arg
            (Printf.sprintf "Metrics.%s: %S is already a %s" (kind_name kind)
               name
               (kind_name m.m_kind));
        id
      | None ->
        let id = !n_metrics in
        if id >= Array.length !metrics then begin
          let cap = max 64 (2 * Array.length !metrics) in
          let fresh = Array.make cap (fresh_metric "" Counter) in
          Array.blit !metrics 0 fresh 0 id;
          metrics := fresh
        end;
        !metrics.(id) <- fresh_metric name kind;
        incr n_metrics;
        Hashtbl.add by_name name id;
        id)

let counter name = intern name Counter
let gauge name = intern name Gauge
let histogram name = intern name Histogram

(* CAS loops for float cells. [accum_max] bails out as soon as the
   current maximum already dominates the sample. *)
let rec accum_float cell v =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. v)) then accum_float cell v

let rec accum_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then accum_max cell v

let incr id = if Atomic.get live then Atomic.incr !metrics.(id).c_value
let add id n = if Atomic.get live then ignore (Atomic.fetch_and_add !metrics.(id).c_value n)
let set id v = if Atomic.get live then Atomic.set !metrics.(id).g_value v

(* Bucket 0: v < 1 (zero, clamped negatives, NaN). Bucket i in 1..30:
   2^(i-1) <= v < 2^i (frexp exponent). Bucket 31: overflow. *)
let bucket_of v =
  if not (v >= 1.0) then 0
  else if v >= ldexp 1.0 (num_buckets - 2) then num_buckets - 1
  else
    let _, e = Float.frexp v in
    e

let bucket_bounds i =
  if i <= 0 then (0.0, 1.0)
  else if i >= num_buckets - 1 then (ldexp 1.0 (num_buckets - 2), infinity)
  else (ldexp 1.0 (i - 1), ldexp 1.0 i)

let observe id v =
  if Atomic.get live then begin
    let m = !metrics.(id) in
    let v = if v >= 0.0 then v else 0.0 (* clamp negatives and NaN *) in
    Atomic.incr m.buckets.(bucket_of v);
    Atomic.incr m.h_count;
    accum_float m.h_sum v;
    accum_max m.h_max v
  end
  [@@qca.hot]

let get id =
  if id < 0 || id >= !n_metrics then invalid_arg "Metrics: unknown id";
  !metrics.(id)

let name id = (get id).m_name
let kind_of id = (get id).m_kind
let value id = Atomic.get (get id).c_value
let gauge_value id = Atomic.get (get id).g_value
let bucket_counts id = Array.map Atomic.get (get id).buckets

type hist_summary = {
  h_count : int;
  h_sum : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p95 : float;
  h_p99 : float;
}

(* Quantiles interpolate linearly within the bucket holding the target
   rank: at the bucket's last sample the estimate is its upper bound
   (matching the old "p50 <= hi" semantics), earlier ranks pull the
   estimate toward the lower bound. Estimates never exceed the
   recorded maximum, which is also what the overflow bucket reports. *)
let quantile (m : metric) count q =
  if count = 0 then 0.0
  else begin
    let target = int_of_float (ceil (q *. float_of_int count)) in
    let target = max 1 target in
    let before = ref 0 and in_bucket = ref 0 and b = ref 0 in
    (try
       for i = 0 to num_buckets - 1 do
         let n = Atomic.get m.buckets.(i) in
         if !before + n >= target then begin
           b := i;
           in_bucket := n;
           raise Exit
         end;
         before := !before + n
       done
     with Exit -> ());
    let lo, hi = bucket_bounds !b in
    let max_v = Atomic.get m.h_max in
    if hi = infinity || !in_bucket = 0 then max_v
    else
      let frac = float_of_int (target - !before) /. float_of_int !in_bucket in
      Float.min (lo +. (frac *. (hi -. lo))) max_v
  end

let summarize_m (m : metric) =
  let count = Atomic.get m.h_count in
  {
    h_count = count;
    h_sum = Atomic.get m.h_sum;
    h_max = Atomic.get m.h_max;
    h_p50 = quantile m count 0.5;
    h_p90 = quantile m count 0.9;
    h_p95 = quantile m count 0.95;
    h_p99 = quantile m count 0.99;
  }

let summarize id = summarize_m (get id)

type export =
  | Counter_v of string * int
  | Gauge_v of string * float
  | Histogram_v of string * hist_summary

let export () =
  List.init !n_metrics (fun id ->
      let m = !metrics.(id) in
      match m.m_kind with
      | Counter -> Counter_v (m.m_name, Atomic.get m.c_value)
      | Gauge -> Gauge_v (m.m_name, Atomic.get m.g_value)
      | Histogram -> Histogram_v (m.m_name, summarize_m m))

let pp_summary fmt () =
  Format.fprintf fmt "@[<v>== metrics ==@,";
  List.iter
    (fun e ->
      match e with
      | Counter_v (n, v) -> Format.fprintf fmt "%-32s %12d@," n v
      | Gauge_v (n, v) -> Format.fprintf fmt "%-32s %12.2f@," n v
      | Histogram_v (n, h) ->
        Format.fprintf fmt
          "%-32s n=%d sum=%.0f p50=%.1f p90=%.1f p99=%.1f max=%.0f@," n
          h.h_count h.h_sum h.h_p50 h.h_p90 h.h_p99 h.h_max)
    (export ());
  Format.fprintf fmt "@]"

(* Finite floats only reach this point (sums/maxima of clamped finite
   samples); print with enough digits to round-trip counters. *)
let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_object () =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ", ";
      match e with
      | Counter_v (n, v) ->
        Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (json_escape n) v)
      | Gauge_v (n, v) ->
        Buffer.add_string buf
          (Printf.sprintf "\"%s\": %s" (json_escape n) (json_float v))
      | Histogram_v (n, h) ->
        Buffer.add_string buf
          (Printf.sprintf
             "\"%s\": {\"count\": %d, \"sum\": %s, \"p50\": %s, \"p90\": %s, \
              \"p95\": %s, \"p99\": %s, \"max\": %s}"
             (json_escape n) h.h_count (json_float h.h_sum)
             (json_float h.h_p50) (json_float h.h_p90) (json_float h.h_p95)
             (json_float h.h_p99) (json_float h.h_max)))
    (export ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let reset () =
  for id = 0 to !n_metrics - 1 do
    let m = !metrics.(id) in
    Atomic.set m.c_value 0;
    Atomic.set m.g_value 0.0;
    Array.iter (fun b -> Atomic.set b 0) m.buckets;
    Atomic.set m.h_count 0;
    Atomic.set m.h_sum 0.0;
    Atomic.set m.h_max 0.0
  done;
  Atomic.set started (Clock.now ())
