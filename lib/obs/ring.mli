(** Per-domain flight recorder: the always-cheap event log that is
    still there when something goes wrong.

    Each domain records into its own fixed-capacity ring of structured
    events — a monotone µs timestamp, an interned {!kind}, the current
    {!Tracectx} correlation word, and three caller int payload words —
    overwriting the oldest once full. Recording takes no lock,
    allocates nothing on the OCaml heap (the clock stub's boxed float
    aside), and while the recorder is disabled every {!record} site
    costs exactly one predictable branch, like {!Metrics} and
    {!Trace}.

    Unlike {!Trace} spans (mutex-guarded, unbounded, meant for runs
    you chose to trace), the ring is meant to be left on in
    production: bounded memory, no contention, and dumped only when a
    request misbehaves — {!events} merges every domain's ring
    chronologically at read time.

    Reading another domain's ring while it records is deliberately
    unsynchronized: a forensic dump may catch at most the slot being
    overwritten mid-write. A domain reading its own ring (the
    per-request dump path) sees exactly what it wrote. *)

val kind : string -> int
(** Interns an event kind name (idempotent). Do this once at module
    initialization, never on the hot path. *)

val kind_name : int -> string

(** {1 Enabling} *)

val live : bool Atomic.t
(** Hot-path guard; flip through {!set_enabled}. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val default_capacity : int
(** 4096 events per domain (~196 KiB per domain at 6 words/event). *)

val set_capacity : int -> unit
(** Capacity (in events) for rings created {e after} this call; a
    domain's ring is sized when that domain first records. Raises
    [Invalid_argument] on a non-positive capacity. *)

(** {1 Recording} *)

val record : int -> int -> int -> int -> unit
(** [record kind a b c] appends an event to this domain's ring:
    timestamp and trace word are captured implicitly. Hot-safe. *)

val now_us : unit -> int
(** The recorder's current timestamp (µs since enable) — pair with
    {!events}' [min_ts_us] to slice a window. *)

(** {1 Reading} *)

type event = {
  e_ts_us : int;  (** µs since the recorder was enabled *)
  e_kind : string;
  e_trace : int;  (** {!Tracectx.word} at record time; 0 = none *)
  e_a : int;
  e_b : int;
  e_c : int;
  e_dom : int;  (** recording domain's id *)
}

val events : ?min_ts_us:int -> ?trace:int -> unit -> event list
(** Every retained event across all domains, merged in timestamp
    order (ties broken by domain then record order). [min_ts_us]
    keeps only events at or after that timestamp; [trace] keeps only
    events carrying that correlation word. *)

val total_recorded : unit -> int
(** Events ever recorded (including overwritten ones), summed over
    domains. *)

val domains : unit -> int
(** Number of domains that have recorded so far. *)

val reset : unit -> unit
(** Empties every ring and re-zeroes the clock. Management operation:
    call while no domain is recording. *)

(** {1 Export} *)

val event_json : event -> string
val events_json : event list -> string
(** JSON array of events, the [ring] field of a forensic dump. *)
