module Clock = Qca_util.Clock
module Rng = Qca_util.Rng

type t = { trace_id : string; parent_id : string; sampled : bool }

(* {1 Hex helpers} *)

let is_lower_hex s =
  let ok = ref (String.length s > 0) in
  String.iter
    (fun c ->
      match c with '0' .. '9' | 'a' .. 'f' -> () | _ -> ok := false)
    s;
  !ok

let all_zero s =
  let z = ref true in
  String.iter (fun c -> if c <> '0' then z := false) s;
  !z

let hex_of_int64 ~digits v =
  let b = Bytes.create digits in
  for i = 0 to digits - 1 do
    let nibble =
      Int64.to_int (Int64.logand (Int64.shift_right_logical v (4 * (digits - 1 - i))) 0xFL)
    in
    Bytes.set b i "0123456789abcdef".[nibble]
  done;
  Bytes.to_string b

(* {1 Parsing (W3C trace-context `traceparent`)} *)

let parse_traceparent s =
  (* version(2) - trace-id(32) - parent-id(16) - flags(2); we accept
     only version 00 (the only published version) with the exact
     layout, and reject the all-zero ids the spec declares invalid. *)
  if String.length s <> 55 then Error "traceparent: wrong length"
  else if s.[2] <> '-' || s.[35] <> '-' || s.[52] <> '-' then
    Error "traceparent: wrong field layout"
  else begin
    let version = String.sub s 0 2 in
    let trace_id = String.sub s 3 32 in
    let parent_id = String.sub s 36 16 in
    let flags = String.sub s 53 2 in
    if not (is_lower_hex version) then Error "traceparent: non-hex version"
    else if version = "ff" then Error "traceparent: forbidden version ff"
    else if version <> "00" then Error "traceparent: unsupported version"
    else if not (is_lower_hex trace_id) then
      Error "traceparent: non-hex trace-id"
    else if all_zero trace_id then Error "traceparent: all-zero trace-id"
    else if not (is_lower_hex parent_id) then
      Error "traceparent: non-hex parent-id"
    else if all_zero parent_id then Error "traceparent: all-zero parent-id"
    else if not (is_lower_hex flags) then Error "traceparent: non-hex flags"
    else
      let sampled =
        match int_of_string_opt ("0x" ^ flags) with
        | Some f -> f land 1 = 1
        | None -> false
      in
      Ok { trace_id; parent_id; sampled }
  end

let to_traceparent c =
  Printf.sprintf "00-%s-%s-%s" c.trace_id c.parent_id
    (if c.sampled then "01" else "00")

(* {1 Generation}

   Ids only need to be unique within the deployment, not
   cryptographically strong: splitmix64 over a seed mixing wall time,
   the generating domain and a process-wide counter is plenty, and it
   keeps the obs layer free of extra dependencies. *)

let gen_counter = Atomic.make 0

let fresh_rng () =
  let t = Clock.now () in
  let seed =
    Int64.to_int (Int64.bits_of_float t)
    lxor ((Domain.self () :> int) * 0x9E3779B1)
    lxor (Atomic.fetch_and_add gen_counter 1 * 0x85EBCA77)
  in
  Rng.create seed

let nonzero_hex rng ~digits =
  let rec go () =
    let h =
      if digits = 32 then hex_of_int64 ~digits:16 (Rng.int64 rng) ^ hex_of_int64 ~digits:16 (Rng.int64 rng)
      else hex_of_int64 ~digits (Rng.int64 rng)
    in
    if all_zero h then go () else h
  in
  go ()

let generate () =
  let rng = fresh_rng () in
  {
    trace_id = nonzero_hex rng ~digits:32;
    parent_id = nonzero_hex rng ~digits:16;
    sampled = true;
  }

let child c =
  let rng = fresh_rng () in
  { c with parent_id = nonzero_hex rng ~digits:16 }

(* {1 Correlation word}

   Ring events carry one int of trace identity: the low 60 bits of the
   trace id's tail, always positive, 0 reserved for "no context". *)

let word c =
  let tail = String.sub c.trace_id (String.length c.trace_id - 15) 15 in
  match int_of_string_opt ("0x" ^ tail) with
  | Some 0 | None -> 1
  | Some w -> w

(* {1 The per-domain current context} *)

let current_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get current_key)
let set c = Domain.DLS.get current_key := c

let current_word () =
  match current () with None -> 0 | Some c -> word c

let with_ctx c f =
  let cell = Domain.DLS.get current_key in
  let saved = !cell in
  cell := Some c;
  Fun.protect ~finally:(fun () -> cell := saved) f
