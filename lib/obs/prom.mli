(** Prometheus text exposition (format version 0.0.4) of the
    {!Metrics} registry.

    Names are sanitized to [qca_<name with non-identifier chars as _>].
    Histograms expose cumulative [_bucket{le="..."}] series over the
    registry's power-of-two bounds, [_sum], [_count], and a companion
    [<name>_q{quantile="0.5"|"0.9"|"0.99"}] gauge family carrying the
    interpolated quantile estimates. *)

val sanitize : string -> string

val exposition : unit -> string
(** The whole registry, ready to serve on [GET /metrics] with
    [Content-Type: text/plain; version=0.0.4]. *)
