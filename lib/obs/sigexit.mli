(** Flush observability output when a CLI is interrupted.

    A `--metrics`/`--trace-out` run that is killed by Ctrl-C or a
    supervisor's SIGTERM used to lose everything it had recorded — the
    export only happened on the normal exit path. {!install} arms
    SIGINT and SIGTERM with a handler that runs a flush callback once
    and then exits with the conventional [128 + signal] code, so an
    interrupted run still leaves its trace and metrics summary behind.

    This is termination, not graceful drain: the process exits from the
    handler (after OCaml's [at_exit]). A server that must finish
    in-flight work installs its own handlers instead (see
    [Qca_serve.Server]). *)

val install : flush:(unit -> unit) -> unit
(** Installs SIGINT/SIGTERM handlers that run [flush] once (even when
    both signals arrive) and then [exit (128 + signo)] — 130 for
    SIGINT, 143 for SIGTERM. A second [install] replaces the callback.
    An exception escaping [flush] is swallowed: the process is dying
    anyway, and the exit code should still say why. *)
