(** Process-wide metrics registry: counters, gauges, and histograms
    with logarithmic (power-of-two) buckets.

    Metric names are interned once — usually at module initialization —
    into integer ids; hot-path updates ({!incr}, {!add}, {!set},
    {!observe}) are then plain array operations guarded by a single
    boolean load, so a disabled registry costs one predictable branch
    per site and allocates nothing.

    The registry is global on purpose: several solvers, models and
    pipeline phases in one process accumulate into the same series,
    which is what the CLI `--metrics` report and the Chrome-trace
    export want.

    Updates are domain-safe: every cell is an [Atomic.t] (int cells
    use fetch-and-add, float cells a CAS retry loop) and interning is
    mutex-guarded, so concurrent portfolio seats and pool workers never
    lose increments. Reads ({!export}, {!summarize}) take no global
    snapshot — a histogram exported mid-update may be off by the
    in-flight sample, which is fine for reporting. {!set_enabled} and
    {!reset} are management operations: call them from one domain while
    no workers are updating. *)

type id
(** An interned metric. Ids stay valid across {!reset}. *)

type kind = Counter | Gauge | Histogram

val counter : string -> id
(** Interns [name] as a counter (idempotent). Raises
    [Invalid_argument] if [name] is already interned with a different
    kind. *)

val gauge : string -> id
val histogram : string -> id

(** {1 Enabling} *)

val live : bool Atomic.t
(** The hot-path guard. Treat as read-only outside this module; flip it
    through {!set_enabled}. Instrumentation sites may read
    [Atomic.get live] directly to skip argument computation when the
    registry is off. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Enabling also (re)starts the {!elapsed_s} stopwatch used for rate
    gauges. *)

val elapsed_s : unit -> float
(** Seconds since the registry was last enabled (0 when disabled). *)

(** {1 Hot-path updates (no-ops while disabled)} *)

val incr : id -> unit
val add : id -> int -> unit
val set : id -> float -> unit

val observe : id -> float -> unit
(** Records a sample into a histogram. Negative (and NaN) samples are
    clamped to 0; samples ≥ 2{^30} land in the overflow bucket. *)

(** {1 Buckets} *)

val num_buckets : int
(** 32: bucket 0 holds samples < 1, bucket [i] (1 ≤ i ≤ 30) holds
    [2{^i-1}, 2{^i}), bucket 31 is the overflow bucket. *)

val bucket_of : float -> int
val bucket_bounds : int -> float * float
(** [(lo, hi)] of a bucket; the overflow bucket's [hi] is [infinity]. *)

(** {1 Reading} *)

val name : id -> string
val kind_of : id -> kind
val value : id -> int  (** counter value *)

val gauge_value : id -> float
val bucket_counts : id -> int array  (** copy, length {!num_buckets} *)

type hist_summary = {
  h_count : int;
  h_sum : float;
  h_max : float;
  h_p50 : float;
      (** quantiles interpolate within the power-of-two bucket holding
          the target rank and never exceed [h_max] *)
  h_p90 : float;
  h_p95 : float;
  h_p99 : float;
}

val summarize : id -> hist_summary

type export =
  | Counter_v of string * int
  | Gauge_v of string * float
  | Histogram_v of string * hist_summary

val export : unit -> export list
(** Every registered metric, in registration order (zero-valued ones
    included, so dashboards see a stable schema). *)

val pp_summary : Format.formatter -> unit -> unit
(** Human-readable table of every metric. *)

val json_object : unit -> string
(** The registry as one JSON object
    [{"name": value, ..., "hist": {"count":..,"sum":..,"p50":..,
    "p90":..,"p95":..,"p99":..,"max":..}}] — embedded under ["otherData"] by
    {!Trace.to_chrome_json} and usable standalone. *)

val reset : unit -> unit
(** Zeroes every value (counts, gauges, buckets); interned ids remain
    valid. Also restarts the stopwatch. *)

(** {1 JSON helpers (shared with {!Trace})} *)

val json_escape : string -> string
val json_float : float -> string
