module Clock = Qca_util.Clock

type span_record = {
  s_name : string;
  s_ts_us : int;
  s_dur_us : int;
  s_depth : int;
  s_tid : int;
  s_trace : int;  (* Tracectx.current_word at close time; 0 = none *)
  s_args : (string * string) list;
}

(* Spans carry their begin sequence number: timestamps are µs-coarse,
   so ties are common and start order cannot be recovered from them. *)
type event =
  | Span of int * span_record
  | Instant of {
      i_name : string;
      i_ts_us : int;
      i_tid : int;
      i_args : (string * string) list;
    }
  | Counter of { c_name : string; c_ts_us : int; c_tid : int; c_value : float }

let live = Atomic.make false
let enabled () = Atomic.get live

let t0 = Atomic.make (Clock.now ())

(* Completed events, in completion order, guarded by [rec_m] (several
   domains — pool workers, portfolio seats — record concurrently). The
   open-span stack is per-domain state in DLS: spans nest within one
   domain and never migrate across domains. *)
let rec_m = Mutex.create ()

let events : event list ref = ref []
  [@@qca.domain_safe "guarded by rec_m"]

let n_events = ref 0
  [@@qca.domain_safe "guarded by rec_m"]

let next_seq = ref 0
  [@@qca.domain_safe "guarded by rec_m"]

let stack_key :
    (int * string * int * (string * string) list) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key
let tid () = (Domain.self () :> int)

let now_us () =
  int_of_float (Clock.ms_between (Atomic.get t0) (Clock.now ()) *. 1000.0)

let record e =
  Mutex.lock rec_m;
  events := e :: !events;
  incr n_events;
  Mutex.unlock rec_m

let alloc_seq () =
  Mutex.lock rec_m;
  let seq = !next_seq in
  incr next_seq;
  Mutex.unlock rec_m;
  seq

let set_enabled b =
  if b && not (Atomic.get live) then Atomic.set t0 (Clock.now ());
  Atomic.set live b

let begin_span ?(args = []) name =
  if Atomic.get live then begin
    let seq = alloc_seq () in
    let st = stack () in
    st := (seq, name, now_us (), args) :: !st
  end

let end_span ?(args = []) name =
  if Atomic.get live then begin
    let st = stack () in
    match !st with
    | [] ->
      invalid_arg
        (Printf.sprintf "Trace.end_span: no open span (closing %S)" name)
    | (seq, top, ts, bargs) :: rest ->
      if top <> name then
        invalid_arg
          (Printf.sprintf "Trace.end_span: closing %S but %S is open" name top);
      st := rest;
      record
        (Span
           ( seq,
             {
               s_name = name;
               s_ts_us = ts;
               s_dur_us = max 0 (now_us () - ts);
               s_depth = List.length rest;
               s_tid = tid ();
               s_trace = Tracectx.current_word ();
               s_args = bargs @ args;
             } ))
  end

let span ?args name f =
  if not (Atomic.get live) then f ()
  else begin
    begin_span ?args name;
    Fun.protect ~finally:(fun () -> end_span name) f
  end

let instant ?(args = []) name =
  if Atomic.get live then
    record
      (Instant { i_name = name; i_ts_us = now_us (); i_tid = tid (); i_args = args })

let counter name v =
  if Atomic.get live then
    record
      (Counter { c_name = name; c_ts_us = now_us (); c_tid = tid (); c_value = v })

let all_events () =
  Mutex.lock rec_m;
  let es = !events in
  Mutex.unlock rec_m;
  es

let spans () =
  List.filter_map (function Span (q, s) -> Some (q, s) | _ -> None)
    (all_events ())
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let open_depth () = List.length !(stack ())

let events_recorded () =
  Mutex.lock rec_m;
  let n = !n_events in
  Mutex.unlock rec_m;
  n

let reset () =
  Mutex.lock rec_m;
  events := [];
  n_events := 0;
  next_seq := 0;
  Mutex.unlock rec_m;
  stack () := [];
  Atomic.set t0 (Clock.now ())

(* {1 Rendering} *)

let pp_summary fmt () =
  Format.fprintf fmt "@[<v>== trace (%d events) ==@," (events_recorded ());
  List.iter
    (fun s ->
      Format.fprintf fmt "%s%-*s %10.3f ms%s%s@,"
        (String.make (2 * s.s_depth) ' ')
        (max 1 (30 - (2 * s.s_depth)))
        s.s_name
        (float_of_int s.s_dur_us /. 1000.0)
        (if s.s_tid = 0 then "" else Printf.sprintf "  [tid %d]" s.s_tid)
        (match s.s_args with
        | [] -> ""
        | args ->
          "  ["
          ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
          ^ "]"))
    (spans ());
  (match !(stack ()) with
  | [] -> ()
  | open_ ->
    Format.fprintf fmt "(still open: %s)@,"
      (String.concat " > " (List.rev_map (fun (_, n, _, _) -> n) open_)));
  Format.fprintf fmt "@]"

let escape = Metrics.json_escape

let args_json args =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": \"%s\"" (escape k) (escape v))
         args)
  ^ "}"

let event_tid = function
  | Span (_, s) -> s.s_tid
  | Instant i -> i.i_tid
  | Counter c -> c.c_tid

let event_json buf e =
  match e with
  | Span (_, s) ->
    let args =
      if s.s_trace = 0 then s.s_args
      else ("trace", string_of_int s.s_trace) :: s.s_args
    in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\": \"%s\", \"cat\": \"qca\", \"ph\": \"X\", \"ts\": %d, \
          \"dur\": %d, \"pid\": 1, \"tid\": %d, \"args\": %s}"
         (escape s.s_name) s.s_ts_us s.s_dur_us s.s_tid (args_json args))
  | Instant i ->
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\": \"%s\", \"cat\": \"qca\", \"ph\": \"i\", \"ts\": %d, \
          \"s\": \"t\", \"pid\": 1, \"tid\": %d, \"args\": %s}"
         (escape i.i_name) i.i_ts_us i.i_tid (args_json i.i_args))
  | Counter c ->
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\": \"%s\", \"cat\": \"qca\", \"ph\": \"C\", \"ts\": %d, \
          \"pid\": 1, \"tid\": %d, \"args\": {\"value\": %s}}"
         (escape c.c_name) c.c_ts_us c.c_tid (Metrics.json_float c.c_value))

let to_chrome_json () =
  let es = all_events () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  Buffer.add_string buf
    "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
     \"args\": {\"name\": \"qca\"}}";
  (* One thread_name metadata row per distinct domain id seen. *)
  let tids =
    List.sort_uniq compare (0 :: List.rev_map event_tid es)
  in
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \
            \"tid\": %d, \"args\": {\"name\": \"%s\"}}"
           t
           (if t = 0 then "main" else Printf.sprintf "domain-%d" t)))
    tids;
  List.iter
    (fun e ->
      Buffer.add_string buf ",\n  ";
      event_json buf e)
    (List.rev es);
  Buffer.add_string buf "\n],\n\"displayTimeUnit\": \"ms\",\n";
  Buffer.add_string buf ("\"otherData\": {\"metrics\": " ^ Metrics.json_object ());
  Buffer.add_string buf "}}\n";
  Buffer.contents buf

let write_chrome file =
  let oc = open_out file in
  output_string oc (to_chrome_json ());
  close_out oc

(* QCA_TRACE: arm the tracer (and the metrics registry) for the whole
   process; the trace is flushed at exit — to the named file, or as the
   tree summary on stderr for QCA_TRACE=1. *)
let env_file =
  match Sys.getenv_opt "QCA_TRACE" with
  | None | Some "" | Some "0" -> None
  | Some v ->
    set_enabled true;
    Metrics.set_enabled true;
    if v = "1" then begin
      at_exit (fun () ->
          if events_recorded () > 0 then Format.eprintf "%a@." pp_summary ());
      None
    end
    else begin
      at_exit (fun () -> write_chrome v);
      Some v
    end
