(** Minimal JSON reader for the observability tooling — loads the
    forensic dumps and Chrome traces this library writes. Not a
    general-purpose JSON library: numbers are floats, [\u] escapes
    outside Latin-1 degrade to ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-string parse; trailing garbage is an error. Never raises. *)

(** {1 Accessors} ([None] on missing member or wrong shape) *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val arr : t -> t list option
val str_member : string -> t -> string option
val num_member : string -> t -> float option
val arr_member : string -> t -> t list option
