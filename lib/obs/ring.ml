module Clock = Qca_util.Clock

(* {1 Kinds: interned event names, same discipline as Metrics ids} *)

let kind_names : string array ref = ref [||]
  [@@qca.domain_safe "guarded by kind_m"]

let n_kinds = ref 0
  [@@qca.domain_safe "guarded by kind_m"]

let kind_by_name : (string, int) Hashtbl.t = Hashtbl.create 32
  [@@qca.domain_safe "guarded by kind_m"]

let kind_m = Mutex.create ()

let kind name =
  Mutex.lock kind_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock kind_m)
    (fun () ->
      match Hashtbl.find_opt kind_by_name name with
      | Some k -> k
      | None ->
        let k = !n_kinds in
        if k >= Array.length !kind_names then begin
          let cap = max 32 (2 * Array.length !kind_names) in
          let fresh = Array.make cap "" in
          Array.blit !kind_names 0 fresh 0 k;
          kind_names := fresh
        end;
        !kind_names.(k) <- name;
        incr n_kinds;
        Hashtbl.add kind_by_name name k;
        k)

let kind_name k =
  Mutex.lock kind_m;
  let n =
    if k >= 0 && k < !n_kinds then !kind_names.(k)
    else Printf.sprintf "kind-%d" k
  in
  Mutex.unlock kind_m;
  n

(* {1 Per-domain buffers}

   One flat int array per domain, [words] ints per slot:
   ts_us · kind · trace word · a · b · c. A domain only ever writes
   its own buffer, so recording takes no lock and allocates nothing
   (beyond the boxed float inside the clock read). [next] counts
   records ever made; the live window is the last [cap] of them. *)

let words = 6

type buf = { b_dom : int; b_data : int array; b_cap : int; mutable b_next : int }

let live = Atomic.make false
let enabled () = Atomic.get live

let default_capacity = 4096
let capacity = Atomic.make default_capacity

let set_capacity c =
  if c < 1 then invalid_arg "Ring.set_capacity";
  Atomic.set capacity c

let t0 = Atomic.make (Clock.now ())

let set_enabled b =
  if b && not (Atomic.get live) then Atomic.set t0 (Clock.now ());
  Atomic.set live b

(* All buffers ever created, for the merge at dump time. A buffer is
   registered once, when its domain first records. *)
let bufs : buf list ref = ref []
  [@@qca.domain_safe "guarded by bufs_m"]

let bufs_m = Mutex.create ()

let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let cap = Atomic.get capacity in
      let b =
        {
          b_dom = (Domain.self () :> int);
          b_data = Array.make (cap * words) 0;
          b_cap = cap;
          b_next = 0;
        }
      in
      Mutex.lock bufs_m;
      bufs := b :: !bufs;
      Mutex.unlock bufs_m;
      b)

let now_us () =
  int_of_float (Clock.ms_between (Atomic.get t0) (Clock.now ()) *. 1000.0)

let record_slow k a b c =
  let buf = Domain.DLS.get buf_key in
  let slot = buf.b_next mod buf.b_cap in
  let base = slot * words in
  let data = buf.b_data in
  data.(base) <- now_us ();
  data.(base + 1) <- k;
  data.(base + 2) <- Tracectx.current_word ();
  data.(base + 3) <- a;
  data.(base + 4) <- b;
  data.(base + 5) <- c;
  buf.b_next <- buf.b_next + 1
  [@@qca.hot]

let[@inline] record k a b c = if Atomic.get live then record_slow k a b c

(* {1 Reading}

   Reads are forensic: dumping another domain's buffer mid-write can
   see a slot that is being overwritten (the merge sorts it out of
   order at worst). A domain reading its own buffer — the per-request
   dump path — sees exactly what it wrote. *)

type event = {
  e_ts_us : int;
  e_kind : string;
  e_trace : int;
  e_a : int;
  e_b : int;
  e_c : int;
  e_dom : int;
}

let snapshot_bufs () =
  Mutex.lock bufs_m;
  let bs = !bufs in
  Mutex.unlock bufs_m;
  bs

let buf_events b =
  let next = b.b_next in
  let n = min next b.b_cap in
  let first = next - n in
  List.init n (fun i ->
      let seq = first + i in
      let base = seq mod b.b_cap * words in
      let d = b.b_data in
      ( (d.(base), b.b_dom, seq),
        {
          e_ts_us = d.(base);
          e_kind = kind_name d.(base + 1);
          e_trace = d.(base + 2);
          e_a = d.(base + 3);
          e_b = d.(base + 4);
          e_c = d.(base + 5);
          e_dom = b.b_dom;
        } ))

let events ?(min_ts_us = 0) ?trace () =
  snapshot_bufs ()
  |> List.concat_map buf_events
  |> List.filter (fun (_, e) ->
         e.e_ts_us >= min_ts_us
         && match trace with None -> true | Some w -> e.e_trace = w)
  |> List.sort compare
  |> List.map snd

let total_recorded () =
  List.fold_left (fun acc b -> acc + b.b_next) 0 (snapshot_bufs ())

let domains () = List.length (snapshot_bufs ())

let reset () =
  Mutex.lock bufs_m;
  List.iter
    (fun b ->
      b.b_next <- 0;
      Array.fill b.b_data 0 (Array.length b.b_data) 0)
    !bufs;
  Mutex.unlock bufs_m;
  Atomic.set t0 (Clock.now ())

(* {1 Export} *)

let event_json e =
  Printf.sprintf
    "{\"ts_us\": %d, \"kind\": \"%s\", \"trace\": %d, \"a\": %d, \"b\": %d, \
     \"c\": %d, \"dom\": %d}"
    e.e_ts_us (Metrics.json_escape e.e_kind) e.e_trace e.e_a e.e_b e.e_c e.e_dom

let events_json es =
  "[" ^ String.concat ", " (List.map event_json es) ^ "]"
