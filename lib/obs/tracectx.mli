(** Request-scoped trace contexts (W3C trace-context).

    A context is a 128-bit trace id plus a 64-bit parent span id,
    carried across the wire in the [traceparent] header
    ([00-<32 hex>-<16 hex>-<2 hex flags>]) and within the process in
    domain-local storage, so everything a request touches — spans,
    {!Ring} events, response headers — correlates on one id.

    The context travels by DLS, not by argument threading: a request
    handler wraps its work in {!with_ctx} and every instrumentation
    site below it (pipeline, OMT, CDCL) picks the id up implicitly via
    {!current_word}. Spans never migrate across domains mid-request in
    this codebase (a worker owns its request end to end), which is the
    invariant that makes DLS carry sound. *)

type t = {
  trace_id : string;  (** 32 lowercase hex chars, not all zero *)
  parent_id : string;  (** 16 lowercase hex chars, not all zero *)
  sampled : bool;
}

val parse_traceparent : string -> (t, string) result
(** Strict parse of a W3C [traceparent] value: version [00] only,
    exact field widths, lowercase hex, all-zero ids rejected. Never
    raises. *)

val to_traceparent : t -> string

val generate : unit -> t
(** A fresh context with random non-zero ids (splitmix64 seeded from
    wall time, domain id and a process counter — unique in practice,
    not cryptographic). *)

val child : t -> t
(** Same trace id, fresh parent id — for propagating a caller's trace
    into work we start on its behalf. *)

val word : t -> int
(** A positive int fingerprint of the trace id (its low hex tail) —
    the single payload word {!Ring} events carry for correlation.
    Never 0; 0 means "no context". *)

(** {1 The per-domain current context} *)

val current : unit -> t option
val set : t option -> unit

val current_word : unit -> int
(** [word] of the current context, or 0 when none is set. *)

val with_ctx : t -> (unit -> 'a) -> 'a
(** Runs [f] with the context installed in this domain's slot, restoring
    the previous value even on raise. *)
