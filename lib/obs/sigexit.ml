let callback = Atomic.make (fun () -> ())
let fired = Atomic.make false

let handler signo =
  if not (Atomic.exchange fired true) then (try (Atomic.get callback) () with _ -> ());
  exit (if signo = Sys.sigint then 130 else 143)

let install ~flush =
  Atomic.set callback flush;
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler)
