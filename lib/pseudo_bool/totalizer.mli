(** Weighted pseudo-Boolean bounds via the generalized totalizer
    encoding (Joshi, Martins, Manquinho 2015).

    Builds, for a weighted sum [Σ wᵢ·ℓᵢ] with positive weights, a CNF
    structure whose output literal witnesses [sum ≥ bound]; asserting
    its negation therefore enforces [sum ≤ bound − 1]. Sums are clamped
    at the bound of interest, which keeps the per-node weight sets small
    on the instances of this repository.

    The OMT drivers use {!assume_at_most} to perform objective
    strengthening with a fresh removable selector per bound. *)

open Qca_sat

type linear = (Lit.t * int) list
(** Terms [wᵢ·ℓᵢ]; weights may be negative. *)

val normalize : linear -> (Lit.t * int) list * int
(** Rewrites terms so that all weights are strictly positive (negating
    literals as needed), returning the added constant offset:
    [Σ old = Σ new + offset]. Zero-weight terms are dropped. *)

val marker_geq : Solver.t -> (Lit.t * int) list -> int -> Lit.t option
(** [marker_geq s terms bound] (positive weights, bound ≥ 1) adds
    clauses such that whenever [Σ ≥ bound] in a model, the returned
    marker literal is forced true. Returns [None] when the sum can
    never reach [bound] (marker would be constant-false). *)

val assume_at_most : Solver.t -> linear -> int -> Lit.t option
(** [assume_at_most s terms k] returns an assumption literal [a] such
    that assuming [a] enforces [Σ terms ≤ k]. Returns [None] when the
    constraint is vacuously true. Raises [Invalid_argument] when it is
    plainly unsatisfiable (even the all-false assignment exceeds [k]). *)

val assume_at_most_approx :
  ?resolution:int -> Solver.t -> linear -> int -> Lit.t option
(** Like {!assume_at_most} but with weights divided by a granularity
    chosen so the clamped totalizer stays below [resolution] (default
    256) distinct levels. The encoded constraint
    [Σ ⌊wᵢ/g⌋·ℓᵢ ≤ ⌊k/g⌋] is implied by the exact one, so using it as a
    branch-and-bound prune never cuts off a feasible improving solution
    — it is merely (boundedly) weaker. Keeps encodings small when
    weights are large and heterogeneous. *)

type selector
(** A reusable upper-bound structure: one totalizer whose root outputs
    can be turned into assumption literals for {e any} bound below the
    construction maximum — the OMT driver's pruning bound shrinks every
    round, so one build serves the whole optimization. *)

val at_most_selector :
  ?resolution:int -> Solver.t -> linear -> max:int -> selector
(** Builds the structure able to enforce [Σ terms ≤ k] for any
    [k ≤ max]. *)

val select : selector -> int -> Lit.t option option
(** [select sel k]: [None] when the bound is vacuous (always true);
    [Some None] when it is infeasible (even the minimum sum exceeds
    [k]); [Some (Some a)] an assumption literal enforcing an
    admissible (implied-by-exact) relaxation of [Σ ≤ k]. *)

val enforce_at_most :
  ?resolution:int -> ?guard:Lit.t -> Solver.t -> linear -> int -> unit
(** Adds [Σ terms ≤ k] as a hard (approximate, implied-by-exact)
    constraint: an {!assume_at_most_approx} selector asserted as a unit
    clause. Used for lazily generated objective cuts. With [guard] the
    cut is only active while the guard literal is assumed
    ([guard → Σ ≤ k]) — reusable models scope their per-run incumbent
    cuts this way and retire them by asserting the guard's negation. *)
