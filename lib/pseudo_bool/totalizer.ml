open Qca_sat

type linear = (Lit.t * int) list

let normalize terms =
  let step (acc, offset) (lit, w) =
    if w = 0 then (acc, offset)
    else if w > 0 then ((lit, w) :: acc, offset)
    else
      (* w·ℓ = w − w·(¬ℓ) = (−w)·(¬ℓ) + w *)
      ((Lit.negate lit, -w) :: acc, offset + w)
  in
  let acc, offset = List.fold_left step ([], 0) terms in
  (List.rev acc, offset)

(* A node of the totalizer tree: a sorted list of (weight, literal)
   outputs, each literal meaning "the subtree sum is ≥ weight". Sums are
   clamped at [cap]. When a node would carry more than [max_out]
   distinct weights, the set is thinned and implication targets are
   rounded DOWN to the nearest kept weight — this only weakens the
   upward implications (sum ≥ w ⟹ output at some w' ≤ w), preserving
   the soundness direction needed for branch-and-bound pruning. *)
type node = (int * Lit.t) list

let thin ~max_out weights =
  let arr = Array.of_list weights in
  let n = Array.length arr in
  if n <= max_out then weights
  else begin
    (* keep an evenly spaced subset, always including the smallest and
       the largest (the largest is the clamp target for the marker) *)
    let kept = Hashtbl.create max_out in
    Hashtbl.replace kept arr.(0) ();
    Hashtbl.replace kept arr.(n - 1) ();
    for i = 1 to max_out - 2 do
      Hashtbl.replace kept arr.(i * (n - 1) / (max_out - 1)) ()
    done;
    List.filter (fun w -> Hashtbl.mem kept w) weights
  end

(* Candidate output weights of a merge: both inputs' weights plus their
   pairwise sums, clamped at [cap]; only candidates reaching at least
   [keep_below] are returned (ascending). Dense merges (candidate count
   on the order of the cap) dedupe-and-sort through a flat seen-bitmap
   over [1..cap] in one O(|a|·|b| + cap) sweep; sparse merges — huge
   cap, few candidates, the norm inside thinned trees where every node
   carries at most [max_out] outputs — collect into a flat int array
   and sort, so neither the O(cap) memset/scan nor any boxing is
   paid. *)
let merge_candidates ~cap ~keep_below (a : node) (b : node) =
  let na = List.length a and nb = List.length b in
  let ncand = (na * nb) + na + nb in
  if cap <= 1024 || cap <= 4 * ncand then begin
    let seen = Bytes.make (cap + 1) '\000' in
    let add w =
      if w > 0 then Bytes.unsafe_set seen (if w < cap then w else cap) '\001'
    in
    List.iter (fun (w, _) -> add w) a;
    List.iter (fun (w, _) -> add w) b;
    List.iter (fun (wa, _) -> List.iter (fun (wb, _) -> add (wa + wb)) b) a;
    let acc = ref [] in
    for w = cap downto keep_below do
      if Bytes.unsafe_get seen w <> '\000' then acc := w :: !acc
    done;
    !acc
  end
  else begin
    let arr = Array.make ncand 0 in
    let n = ref 0 in
    let add w =
      if w > 0 then begin
        let w = if w < cap then w else cap in
        if w >= keep_below then begin
          Array.unsafe_set arr !n w;
          incr n
        end
      end
    in
    List.iter (fun (w, _) -> add w) a;
    List.iter (fun (w, _) -> add w) b;
    List.iter (fun (wa, _) -> List.iter (fun (wb, _) -> add (wa + wb)) b) a;
    let filled = Array.sub arr 0 !n in
    Array.sort (fun (x : int) y -> compare x y) filled;
    let acc = ref [] in
    for i = !n - 1 downto 0 do
      let w = Array.unsafe_get filled i in
      match !acc with
      | hd :: _ when hd = w -> ()
      | _ -> acc := w :: !acc
    done;
    !acc
  end

let merge s ~cap ~max_out ?(keep_below = 1) (a : node) (b : node) : node =
  (* [keep_below] prunes the output range: only sums reaching at least
     [keep_below] (after clamping at [cap]) get output variables and
     implication clauses. The default 1 keeps everything; the root
     merge of a single-marker encoding passes [keep_below = cap], since
     downstream only the cap marker is ever consulted — sub-cap root
     outputs would be dead variables fed by dead clauses. *)
  let keep_below = min keep_below cap in
  let sorted = merge_candidates ~cap ~keep_below a b in
  let kept = thin ~max_out sorted in
  let outs = List.map (fun w -> (w, Lit.pos (Solver.new_var s))) kept in
  let kept_arr = Array.of_list kept in
  (* outs is built positionally from kept, so the two arrays share
     indices and the binary search resolves straight to the literal *)
  let outs_arr = Array.of_list outs in
  let out_for w =
    (* largest kept weight ≤ clamped w (exists: callers only ask for
       w ≥ keep_below, and the smallest such candidate is kept) *)
    let w = min w cap in
    let lo = ref 0 and hi = ref (Array.length kept_arr - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if Array.unsafe_get kept_arr mid <= w then lo := mid else hi := mid - 1
    done;
    snd (Array.unsafe_get outs_arr !lo)
  in
  (* (a ≥ wa) ∧ (b ≥ wb) → (out ≥ wa+wb); the unit contributions are the
     wb = 0 / wa = 0 cases. Conclusions below [keep_below] are pruned
     with their outputs. *)
  List.iter
    (fun (wa, la) ->
      if wa >= keep_below then
        Solver.add_clause s [ Lit.negate la; out_for wa ])
    a;
  List.iter
    (fun (wb, lb) ->
      if wb >= keep_below then
        Solver.add_clause s [ Lit.negate lb; out_for wb ])
    b;
  List.iter
    (fun (wa, la) ->
      List.iter
        (fun (wb, lb) ->
          if wa + wb >= keep_below then
            Solver.add_clause s [ Lit.negate la; Lit.negate lb; out_for (wa + wb) ])
        b)
    a;
  outs

(* Unary counter (Sinz-style registers, implication direction only):
   output.(j) is forced true whenever at least j+1 of [lits] are true. *)
let count_outputs s lits max_count =
  let lits = Array.of_list lits in
  let n = Array.length lits in
  let k = min n max_count in
  if k = 0 then [||]
  else begin
    let r = Array.init n (fun _ -> Array.init k (fun _ -> Solver.new_var s)) in
    for i = 0 to n - 1 do
      Solver.add_clause s [ Lit.negate lits.(i); Lit.pos r.(i).(0) ];
      if i > 0 then begin
        for j = 0 to k - 1 do
          Solver.add_clause s [ Lit.neg_of_var r.(i - 1).(j); Lit.pos r.(i).(j) ]
        done;
        for j = 1 to k - 1 do
          Solver.add_clause s
            [ Lit.negate lits.(i); Lit.neg_of_var r.(i - 1).(j - 1); Lit.pos r.(i).(j) ]
        done
      end
    done;
    Array.init k (fun j -> Lit.pos r.(n - 1).(j))
  end

(* Leaf node for a group of [count] literals sharing weight [w]: outputs
   (min(w·(j+1), cap), count ≥ j+1). Counts whose weight clamps at the
   cap collapse into a single output. *)
let group_node s ~cap ~max_out (w, lits) : node =
  (* the unary counter is also width-capped: undercounting beyond the
     cap only weakens the upward implications (admissible) *)
  let needed = min (min (List.length lits) (((cap - 1) / w) + 1)) max_out in
  let outs = count_outputs s lits needed in
  Array.to_list (Array.mapi (fun j l -> (min (w * (j + 1)) cap, l)) outs)
  |> List.fold_left
       (fun acc (wv, l) ->
         match acc with
         | (wv', _) :: _ when wv' = wv -> acc (* keep the weakest (first) *)
         | _ -> (wv, l) :: acc)
       []
  |> List.rev

(* [root_keep] applies only to the outermost merge (the root node):
   callers that consult nothing but the cap marker pass the cap so the
   root's sub-cap outputs — never read by anyone — are not encoded.
   Inner merges always keep everything; their outputs feed upward. *)
let rec build_nodes s ~cap ~max_out ?(root_keep = 1) = function
  | [] -> []
  | [ n ] -> n
  | nodes ->
    let rec split i left = function
      | rest when i = 0 -> (List.rev left, rest)
      | [] -> (List.rev left, [])
      | t :: rest -> split (i - 1) (t :: left) rest
    in
    let n = List.length nodes in
    let left, right = split (n / 2) [] nodes in
    merge s ~cap ~max_out ~keep_below:root_keep
      (build_nodes s ~cap ~max_out left)
      (build_nodes s ~cap ~max_out right)

(* Group equal weights (a unary counter per group is linear-size). *)
let group_nodes s ~cap ~max_out terms =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (l, w) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups w) in
      Hashtbl.replace groups w (l :: prev))
    terms;
  Hashtbl.fold
    (fun w lits acc -> group_node s ~cap ~max_out (w, lits) :: acc)
    groups []

(* Group equal weights, then totalizer-merge the group nodes. *)
let build s ~cap ~max_out ?root_keep terms =
  build_nodes s ~cap ~max_out ?root_keep (group_nodes s ~cap ~max_out terms)

let marker_geq_sized s ~max_out terms bound =
  if bound <= 0 then invalid_arg "Totalizer.marker_geq: bound must be ≥ 1";
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 terms in
  if total < bound then None
  else begin
    (* only the [bound] marker is consulted downstream, so the root
       node is pruned to it (see [build_nodes]) *)
    let outs = build s ~cap:bound ~max_out ~root_keep:bound terms in
    (* the clamp value [bound] is reachable (total ≥ bound) and always
       kept by [thin], so the marker exists at the root. *)
    let rec find = function
      | [] -> None
      | (w, l) :: rest -> if w = bound then Some l else find rest
    in
    find outs
  end

let marker_geq s terms bound = marker_geq_sized s ~max_out:max_int terms bound

let assume_at_most_sized ~max_out s terms k =
  let pos_terms, offset = normalize terms in
  let k' = k - offset in
  (* Σ pos_terms ≤ k' *)
  if k' < 0 then
    invalid_arg "Totalizer.assume_at_most: bound below the minimum possible sum";
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 pos_terms in
  if total <= k' then None
  else begin
    match marker_geq_sized s ~max_out pos_terms (k' + 1) with
    | None -> None
    | Some marker ->
      let a = Lit.pos (Solver.new_var s) in
      (* a → ¬marker, i.e. a → sum ≤ k' *)
      Solver.add_clause s [ Lit.negate a; Lit.negate marker ];
      Some a
  end

let assume_at_most s terms k = assume_at_most_sized ~max_out:max_int s terms k

let assume_at_most_approx ?(resolution = 256) s terms k =
  assume_at_most_sized ~max_out:resolution s terms k

let enforce_at_most ?resolution ?guard s terms k =
  (* [guard]: the cut is only active while the guard literal is assumed
     — the reusable-model path scopes its incumbent cuts to one
     optimization run this way (guard ∧ cut, retired by asserting
     ¬guard). Without a guard the selector is asserted permanently. *)
  let g = match guard with None -> [] | Some a -> [ Lit.negate a ] in
  match assume_at_most_approx ?resolution s terms k with
  | None -> ()
  | Some a -> Solver.add_clause s (g @ [ a ])
  | exception Invalid_argument _ ->
    (* even the all-false assignment violates the cut: unsatisfiable
       (under the guard, when there is one) *)
    Solver.add_clause s g

(* The root merge of a selector, held back for lazy emission. Root
   outputs carry no ladder clauses between them, so the clauses
   concluding at one output are invisible to queries against any other
   — each bucket can be materialized on its first query. The OMT loop
   touches a handful of the root's outputs over a whole optimization,
   so most buckets are never encoded at all. *)
type pending_root = {
  r_cap : int;
  r_left : node;
  r_right : node;
  r_emitted : bool array;  (* per root-output index *)
}

type selector = {
  sel_solver : Solver.t;
  offset : int;  (* Σ original = Σ positive + offset *)
  total : int;  (* maximum possible positive sum *)
  outputs : (int * Lit.t) array;  (* root outputs, ascending weights *)
  root : pending_root option;  (* when the tree has a root merge *)
  mutable negations : (int, Lit.t) Hashtbl.t option;  (* memo: weight -> assumption *)
}

let at_most_selector ?(resolution = 256) s terms ~max =
  let pos_terms, offset = normalize terms in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 pos_terms in
  let cap = min total (Stdlib.max 1 (max - offset + 1)) in
  let outputs, root =
    if pos_terms = [] then ([||], None)
    else begin
      match group_nodes s ~cap ~max_out:resolution pos_terms with
      | [] -> ([||], None)
      | [ n ] -> (Array.of_list n, None)
      | nodes ->
        (* children are built eagerly (their outputs feed the root from
           every direction); only the root merge's own clauses wait *)
        let rec split i left = function
          | rest when i = 0 -> (List.rev left, rest)
          | [] -> (List.rev left, [])
          | t :: rest -> split (i - 1) (t :: left) rest
        in
        let ln, rn = split (List.length nodes / 2) [] nodes in
        let a = build_nodes s ~cap ~max_out:resolution ln in
        let b = build_nodes s ~cap ~max_out:resolution rn in
        let kept =
          thin ~max_out:resolution (merge_candidates ~cap ~keep_below:1 a b)
        in
        let outs =
          Array.of_list
            (List.map (fun w -> (w, Lit.pos (Solver.new_var s))) kept)
        in
        ( outs,
          Some
            {
              r_cap = cap;
              r_left = a;
              r_right = b;
              r_emitted = Array.make (Array.length outs) false;
            } )
    end
  in
  { sel_solver = s; offset; total; outputs; root; negations = Some (Hashtbl.create 8) }

(* Emit the root-merge clauses concluding at output [idx] — the bucket
   of sums that round down to its weight — on first query. *)
let materialize_root sel idx =
  match sel.root with
  | None -> ()
  | Some r ->
    if not r.r_emitted.(idx) then begin
      r.r_emitted.(idx) <- true;
      let s = sel.sel_solver in
      let w = fst sel.outputs.(idx) in
      let target = snd sel.outputs.(idx) in
      let hi =
        if idx + 1 < Array.length sel.outputs then fst sel.outputs.(idx + 1)
        else max_int
      in
      let in_bucket x =
        let x = min x r.r_cap in
        x >= w && x < hi
      in
      List.iter
        (fun (wa, la) ->
          if in_bucket wa then Solver.add_clause s [ Lit.negate la; target ])
        r.r_left;
      List.iter
        (fun (wb, lb) ->
          if in_bucket wb then Solver.add_clause s [ Lit.negate lb; target ])
        r.r_right;
      List.iter
        (fun (wa, la) ->
          List.iter
            (fun (wb, lb) ->
              if in_bucket (wa + wb) then
                Solver.add_clause s [ Lit.negate la; Lit.negate lb; target ])
            r.r_right)
        r.r_left
    end

let select sel k =
  let k' = k - sel.offset in
  if k' >= sel.total then None (* vacuous *)
  else if k' < 0 then Some None (* infeasible *)
  else begin
    (* smallest root output with weight ≥ k'+1; outputs are ascending *)
    let n = Array.length sel.outputs in
    let rec find lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if fst sel.outputs.(mid) >= k' + 1 then find lo mid else find (mid + 1) hi
    in
    if n = 0 then None
    else begin
      let idx = find 0 n in
      if idx >= n then None (* no output can witness the violation: vacuous *)
      else begin
        materialize_root sel idx;
        let w, marker = sel.outputs.(idx) in
        let memo =
          match sel.negations with
          | Some m -> m
          | None -> assert false
        in
        match Hashtbl.find_opt memo w with
        | Some a -> Some (Some a)
        | None ->
          let a = Lit.pos (Solver.new_var sel.sel_solver) in
          Solver.add_clause sel.sel_solver [ Lit.negate a; Lit.negate marker ];
          Hashtbl.replace memo w a;
          Some (Some a)
      end
    end
  end
