(** Lazy SMT solver for Booleans + integer difference logic, with
    optimization (OMT) drivers.

    The Boolean skeleton is solved by the CDCL solver ({!Qca_sat});
    difference atoms [x − y ≤ k] are registered as fresh Boolean
    variables, and each full Boolean model is checked against the
    difference-logic theory ({!Qca_diff_logic}). Theory conflicts come
    back as negative cycles and are learnt as clauses (lazy, offline
    DPLL(T) — entirely adequate for the model sizes the circuit
    adaptation produces; see DESIGN.md).

    This is the fragment the paper's SMT model lives in: Eq. 1 are
    plain clauses, Eq. 2/3 are conditional difference constraints, and
    Eq. 5/8-10 are linear objectives handled by {!minimize}. *)

open Qca_sat

type t

type ivar
(** An integer (difference-logic) variable. *)

val create : ?options:Solver.options -> unit -> t

val solver : t -> Solver.t
(** The underlying CDCL solver (for adding plain variables/clauses and
    for the pseudo-Boolean encoders). *)

val new_bool : t -> Lit.var
val add_clause : t -> Lit.t list -> unit

val new_int : t -> string -> ivar
val origin : t -> ivar
(** The distinguished zero variable: all integer values are reported
    relative to it. *)

val atom_le : t -> ivar -> ivar -> int -> Lit.t
(** [atom_le t x y k] is the literal of the atom [x − y ≤ k]
    (memoized). Atoms are {e monotone}: a true atom enforces its
    constraint, a false atom enforces nothing — so atom literals must
    only be used positively (asserted or implied), which is all the
    adaptation model ever needs and what keeps the lazy theory loop
    efficient. *)

val atom_ge : t -> ivar -> ivar -> int -> Lit.t
(** [x − y ≥ k], a separate monotone atom (not the negation of
    {!atom_le}). *)

type verdict = Sat | Unsat | Unknown of Solver.stop_reason

val solve :
  ?assumptions:Lit.t list ->
  ?budget:Solver.budget ->
  ?jobs:int ->
  ?incremental:bool ->
  ?share:bool ->
  t ->
  verdict
(** Lazy DPLL(T). With a [budget], [Unknown reason] reports budget
    exhaustion, cancellation or an injected fault; without one the only
    [Unknown] is [Theory_divergence] when the refinement fuel runs out.
    The fuel is the budget's [max_theory_rounds] (cumulative across
    calls sharing the budget; the default budget keeps the historical
    1e6 cap). The budget's {!Qca_util.Fault} plan is consulted at
    {!Qca_util.Fault.Theory_check} before every difference-logic check:
    an injected [Spurious_conflict] makes the loop retry (consuming
    fuel) without learning a clause, so soundness is preserved.

    [jobs > 1] races that many diversified CDCL configurations per
    Boolean solve ({!Qca_par.Portfolio.solve_portfolio}); [jobs = 1]
    (default) is the bit-identical sequential path.

    [incremental] (default [true]) keeps the portfolio seats alive in a
    persistent {!Qca_par.Portfolio.session} across theory rounds and
    across [solve] calls: learnt clauses (theory lemmas included), saved
    phases and VSIDS activities carry over, and lemmas added between
    rounds are replayed into the seats from the base solver's clause
    journal. [incremental:false] rebuilds fresh diversified clones every
    round (the measured scratch baseline). [share] (default [true])
    arms the lock-free learnt-clause exchange between the seats; both
    flags are no-ops at [jobs = 1]. *)

val bool_value : t -> Lit.var -> bool
(** After {!Sat}. *)

val lit_value : t -> Lit.t -> bool

val int_value : t -> ivar -> int
(** Value relative to {!origin} in the last theory-consistent model. *)

type opt_stats = {
  rounds : int;  (** SAT calls made by the OMT driver *)
  theory_conflicts : int;
}

type minimize_outcome = {
  best : (int * opt_stats) option;
      (** best (smallest) objective found, [None] when no model was seen *)
  complete : bool;
      (** the search closed with an UNSAT certificate (so [best] is the
          proven optimum, or the problem is infeasible) *)
  stopped : Solver.stop_reason option;
      (** why an incomplete search stopped ([Out_of_rounds] for the
          driver's own round limit, otherwise the budget's reason) *)
}

val minimize :
  t ->
  evaluate:(unit -> int) ->
  prune:(best:int -> Lit.t list) ->
  block:(unit -> Lit.t list) ->
  ?assumptions:Lit.t list ->
  ?max_rounds:int ->
  ?budget:Solver.budget ->
  ?jobs:int ->
  ?incremental:bool ->
  ?share:bool ->
  unit ->
  minimize_outcome
(** Branch-and-bound minimization. Repeatedly solves; for each
    theory-consistent model calls [evaluate] (which may snapshot the
    model), then adds the [block] clause and re-solves under
    [prune ~best] assumptions. [prune] must be {e admissible}: it may
    only exclude assignments whose objective is ≥ [best]. Stops early —
    keeping the incumbent — when [max_rounds] (default 100_000) or the
    [budget] is exhausted; never raises. [incremental] (default [true])
    carries one persistent solver/seat session through every OMT round
    instead of rebuilding per round; [share] (default [true]) arms the
    seat-to-seat learnt-clause exchange at [jobs > 1]. See {!solve}. *)

val stats : t -> opt_stats
(** Cumulative counters from the last [solve]/[minimize]. *)

val sat_stats : t -> Solver.stats
(** Counters of the underlying CDCL solver (conflicts, propagations,
    learnt-clause minimization, arena GCs, ...). *)
