open Qca_sat
module Dl = Qca_diff_logic.Dl
module Fault = Qca_util.Fault
module Obs = Qca_obs.Metrics
module Ring = Qca_obs.Ring

let m_theory_rounds = Obs.counter "smt.rounds"
let m_theory_conflicts = Obs.counter "smt.theory_conflicts"
let k_round = Ring.kind "smt.round"

type ivar = int

type direction = Le | Ge

type atom = { ax : ivar; ay : ivar; ak : int; dir : direction; lit : Lit.t }

type t = {
  sat : Solver.t;
  mutable num_ints : int;
  mutable int_names : string list;  (* reversed *)
  atoms : (int * int * int * bool, Lit.t) Hashtbl.t;  (* last key part: true = Le *)
  mutable atom_list : atom list;
  mutable int_model : int array;  (* last consistent assignment *)
  mutable n_theory_conflicts : int;
  mutable n_rounds : int;
  (* persistent portfolio seats reused across DPLL(T) rounds and across
     solve calls: (jobs, share, seats), rebuilt when either changes *)
  mutable session : (int * bool * Qca_par.Portfolio.session) option;
}

let create ?options () =
  let sat = Solver.create ?options () in
  let t =
    {
      sat;
      num_ints = 0;
      int_names = [];
      atoms = Hashtbl.create 64;
      atom_list = [];
      int_model = [||];
      n_theory_conflicts = 0;
      n_rounds = 0;
      session = None;
    }
  in
  (* variable 0 is the origin *)
  t.num_ints <- 1;
  t.int_names <- [ "origin" ];
  t

let solver t = t.sat
let sat_stats t = Solver.stats t.sat
let new_bool t = Solver.new_var t.sat
let add_clause t lits = Solver.add_clause t.sat lits

let new_int t name =
  let v = t.num_ints in
  t.num_ints <- v + 1;
  t.int_names <- name :: t.int_names;
  v

let origin _t = 0

let make_atom t x y k dir =
  let is_le = dir = Le in
  match Hashtbl.find_opt t.atoms (x, y, k, is_le) with
  | Some lit -> lit
  | None ->
    let lit = Lit.pos (Solver.new_var t.sat) in
    Hashtbl.add t.atoms (x, y, k, is_le) lit;
    t.atom_list <- { ax = x; ay = y; ak = k; dir; lit } :: t.atom_list;
    lit

let atom_le t x y k = make_atom t x y k Le
let atom_ge t x y k = make_atom t x y k Ge

type verdict = Sat | Unsat | Unknown of Solver.stop_reason

(* Atoms are monotone (one-sided): only atoms assigned true contribute a
   constraint; a false atom means nothing. This is sound because the
   encodings in this repository only ever use atom literals positively,
   and it prevents the lazy theory loop from chasing spurious negative
   cycles created by don't-care atoms. A Ge atom x − y ≥ k is the
   difference constraint y − x ≤ −k. *)
let theory_constraints t =
  List.filter_map
    (fun a ->
      if not (Solver.lit_value t.sat a.lit) then None
      else
        match a.dir with
        | Le -> Some { Dl.x = a.ax; y = a.ay; k = a.ak; tag = a.lit }
        | Ge -> Some { Dl.x = a.ay; y = a.ax; k = -a.ak; tag = a.lit })
    t.atom_list

(* The SAT engine of one theory round. Incremental (default): one
   persistent portfolio session carries learnt clauses — theory lemmas
   included — phases and activities across rounds and across [solve]
   calls; the theory lemmas added between rounds are replayed into the
   seats from the base solver's clause journal. Non-incremental: fresh
   diversified clones every round (the scratch baseline the bench
   measures the reuse win against). *)
let round_engine t ~jobs ~share ~incremental =
  if not incremental then fun assumptions budget ->
    (Qca_par.Portfolio.solve_portfolio ~assumptions ~budget ~share ~jobs t.sat)
      .verdict
  else begin
    let session =
      match t.session with
      | Some (j, sh, ss) when j = jobs && sh = share -> ss
      | _ ->
        let ss = Qca_par.Portfolio.create_session ~share ~jobs t.sat in
        t.session <- Some (jobs, share, ss);
        ss
    in
    fun assumptions budget ->
      (Qca_par.Portfolio.session_solve ~assumptions ~budget session).verdict
  end

let rec solve_loop t assumptions budget fuel ~engine =
  if fuel <= 0 then Unknown Solver.Theory_divergence
  else begin
    t.n_rounds <- t.n_rounds + 1;
    Obs.incr m_theory_rounds;
    Ring.record k_round t.n_rounds t.n_theory_conflicts fuel;
    match engine assumptions budget with
    | Solver.Unsat -> Unsat
    | Solver.Unknown r -> Unknown r
    | Solver.Sat -> (
      match Fault.check budget.Solver.fault Fault.Theory_check with
      | Some Fault.Spurious_conflict ->
        (* injected transient theory failure: burn fuel and re-check —
           no clause is learnt, so soundness is untouched *)
        t.n_theory_conflicts <- t.n_theory_conflicts + 1;
        solve_loop t assumptions budget (fuel - 1) ~engine
      | Some Fault.Cancel -> Unknown Solver.Cancelled
      | Some Fault.Exhaust -> Unknown Solver.Theory_divergence
      | None -> (
        let constraints = theory_constraints t in
        match Dl.check ~num_vars:t.num_ints constraints with
        | Dl.Consistent values ->
          t.int_model <- values;
          Sat
        | Dl.Negative_cycle blamed ->
          t.n_theory_conflicts <- t.n_theory_conflicts + 1;
          Obs.incr m_theory_conflicts;
          (* the conjunction of blamed literals is theory-inconsistent *)
          Solver.add_clause t.sat (List.map Lit.negate blamed);
          solve_loop t assumptions budget (fuel - 1) ~engine))
  end

(* Theory-round fuel comes from the budget (cumulative across calls
   sharing it, like the conflict/propagation accounts). [no_budget] is a
   shared constant and must never be written to, so its spent counter is
   left alone — its [max_theory_rounds] default keeps the historical
   1e6 cap. *)
let solve ?(assumptions = []) ?(budget = Solver.no_budget) ?(jobs = 1)
    ?(incremental = true) ?(share = true) t =
  t.n_rounds <- 0;
  let engine = round_engine t ~jobs ~share ~incremental in
  let fuel =
    max 0 (budget.Solver.max_theory_rounds - budget.Solver.theory_rounds_spent)
  in
  let r = solve_loop t assumptions budget fuel ~engine in
  if budget != Solver.no_budget then
    budget.Solver.theory_rounds_spent <-
      budget.Solver.theory_rounds_spent + t.n_rounds;
  r

let bool_value t v = Solver.value t.sat v
let lit_value t l = Solver.lit_value t.sat l

let int_value t v =
  if v < 0 || v >= t.num_ints then invalid_arg "Smt.int_value: unknown variable";
  if Array.length t.int_model = 0 then invalid_arg "Smt.int_value: no model";
  t.int_model.(v) - t.int_model.(0)

type opt_stats = { rounds : int; theory_conflicts : int }

let stats t = { rounds = t.n_rounds; theory_conflicts = t.n_theory_conflicts }

type minimize_outcome = {
  best : (int * opt_stats) option;
  complete : bool;
  stopped : Solver.stop_reason option;
}

let minimize t ~evaluate ~prune ~block ?(assumptions = [])
    ?(max_rounds = 100_000) ?(budget = Solver.no_budget) ?(jobs = 1)
    ?(incremental = true) ?(share = true) () =
  let total_rounds = ref 0 in
  let conflicts_before = t.n_theory_conflicts in
  let finish best ~complete ~stopped =
    {
      best =
        Option.map
          (fun v ->
            ( v,
              {
                rounds = !total_rounds;
                theory_conflicts = t.n_theory_conflicts - conflicts_before;
              } ))
          best;
      complete;
      stopped;
    }
  in
  let rec improve best rounds =
    if rounds > max_rounds then
      finish best ~complete:false ~stopped:(Some Solver.Out_of_rounds)
    else begin
      let extra = match best with None -> [] | Some b -> prune ~best:b in
      match
        solve ~assumptions:(assumptions @ extra) ~budget ~jobs ~incremental
          ~share t
      with
      | Unsat -> finish best ~complete:true ~stopped:None
      | Unknown r -> finish best ~complete:false ~stopped:(Some r)
      | Sat ->
        total_rounds := !total_rounds + 1;
        let v = evaluate () in
        let best' =
          match best with Some b when b <= v -> best | _ -> Some v
        in
        add_clause t (block ());
        improve best' (rounds + 1)
    end
  in
  improve None 0
